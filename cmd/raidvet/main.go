// Command raidvet runs the repository's static-verification suite over
// the named packages (default ./...).  It exits nonzero if any check
// fires, so it slots directly into CI next to go vet.
//
// Usage:
//
//	raidvet [-json] [-fix] [-checks c1,c2] [packages]
//
// Checks: simtime (no wall-clock time), detrand (no global math/rand),
// rawgo (no goroutines outside internal/sim), maporder (no sim calls
// under range-over-map), simpanic (no panics in internal library code),
// errdrop (no discarded error results), wrapcheck (%w wrapping at the
// API boundary so errors.Is sees re-exported sentinels), pairbalance
// (Acquire/Release, Add/Done and Span begin/end balance on every path),
// allowaudit (every //lint:allow names a registered check, carries a
// reason, and suppresses a live diagnostic).
//
// Individual lines are exempted with "//lint:allow <check> <reason>".
// -json emits the stable machine-readable diagnostics schema; -fix
// applies the suggested fixes analyzers attach to mechanical findings
// (rewriting %v to %w, deleting stale allows); -checks restricts the
// run to a comma-separated subset of the suite.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"raidii/internal/analysis/raidvet"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as machine-readable JSON")
	fix := flag.Bool("fix", false, "apply suggested fixes to the source")
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var selected []string
	if *checks != "" {
		for _, c := range strings.Split(*checks, ",") {
			if c = strings.TrimSpace(c); c != "" {
				selected = append(selected, c)
			}
		}
	}
	n, err := raidvet.RunOpts(raidvet.Options{
		Dir:      ".",
		Patterns: patterns,
		Checks:   selected,
		JSON:     *jsonOut,
		Fix:      *fix,
		Out:      os.Stdout,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "raidvet: %v\n", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "raidvet: %d finding(s)\n", n)
		os.Exit(1)
	}
}
