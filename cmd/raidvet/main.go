// Command raidvet runs the repository's simulation-determinism lint
// suite over the named packages (default ./...).  It exits nonzero if
// any check fires, so it slots directly into CI next to go vet.
//
// Usage:
//
//	raidvet [packages]
//
// Checks: simtime (no wall-clock time), detrand (no global math/rand),
// rawgo (no goroutines outside internal/sim), maporder (no sim calls
// under range-over-map), simpanic (no panics in internal library code).
// Individual lines are exempted with "//lint:allow <check> <reason>".
package main

import (
	"fmt"
	"os"

	"raidii/internal/analysis/raidvet"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	n, err := raidvet.Run(".", patterns, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "raidvet: %v\n", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "raidvet: %d finding(s)\n", n)
		os.Exit(1)
	}
}
