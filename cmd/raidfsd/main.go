// Command raidfsd serves the simulated RAID-II file system over real TCP —
// the library as an actual network file server.  The wire protocol is a
// minimal line-oriented scheme in the spirit of the paper's raid_open /
// raid_read / raid_write socket library:
//
//	CREATE <path>\n                     -> OK <simulated-us>\n
//	OPEN <path>\n                       -> OK <size>\n
//	WRITE <path> <off> <n>\n<n bytes>   -> OK <simulated-us>\n
//	READ <path> <off> <n>\n             -> OK <m> <simulated-us>\n<m bytes>
//	MKDIR <path>\n                      -> OK\n
//	LS <path>\n                         -> OK <k>\n followed by k lines
//	RM <path>\n                         -> OK\n
//	SYNC\n                              -> OK <simulated-us>\n
//	QUIT\n
//
// Every operation also reports the simulated time the RAID-II hardware
// would have spent on it.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // opt-in profiling endpoint, gated by -pprof
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"raidii"
	"raidii/internal/telemetry"
	"raidii/internal/trace"
)

type serverState struct {
	mu  sync.Mutex // the simulation engine is single-threaded
	srv *raidii.Server
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9941", "listen address")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	traceOut := flag.String("trace", "", "on SIGINT/SIGTERM, write the accumulated simulation trace (Chrome JSON) to this file")
	util := flag.Bool("util", false, "on SIGINT/SIGTERM, print the component utilization table")
	metricsAddr := flag.String("metrics", "", "serve Prometheus telemetry at http://<addr>/metrics; empty disables")
	flag.Parse()

	srv, err := raidii.NewServer(raidii.Fig8Geometry())
	if err != nil {
		log.Fatal(err)
	}
	var rec *trace.Recorder
	if *traceOut != "" || *util {
		rec = trace.Attach(srv.Sys().Eng, trace.Config{Label: "raidfsd", Pid: 1, Events: *traceOut != ""})
	}
	var reg *telemetry.Registry
	if *metricsAddr != "" {
		reg = telemetry.Attach(srv.Sys().Eng)
	}
	if _, err := srv.Simulate(func(t *raidii.Task) error { return t.FormatFS() }); err != nil {
		log.Fatal(err)
	}
	st := &serverState{srv: srv}

	if *pprofAddr != "" {
		// Real-host profiling of the daemon itself (the simulation measures
		// simulated time; pprof measures where the host CPU goes).
		//lint:allow rawgo real pprof HTTP listener on the host; never touches the simulation
		go func() {
			log.Printf("raidfsd: pprof at http://%s/debug/pprof/", *pprofAddr)
			log.Print(http.ListenAndServe(*pprofAddr, nil))
		}()
	}
	if reg != nil {
		// Real scrape endpoint for the simulated server's telemetry.  Each
		// scrape serializes onto the engine via st.mu, like every client
		// command, so the registry is never read mid-operation.
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			st.mu.Lock()
			defer st.mu.Unlock()
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := telemetry.WritePrometheus(w, reg, telemetry.ExportOptions{Label: "raidfsd"}); err != nil {
				log.Printf("raidfsd: metrics: %v", err)
			}
		})
		//lint:allow rawgo real metrics HTTP listener on the host; scrapes serialize onto the engine via st.mu
		go func() {
			log.Printf("raidfsd: metrics at http://%s/metrics", *metricsAddr)
			log.Print(http.ListenAndServe(*metricsAddr, mux))
		}()
	}
	if rec != nil {
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		//lint:allow rawgo real signal handler on the host; the dump serializes onto the engine via st.mu
		go func() {
			<-sigc
			st.mu.Lock()
			defer st.mu.Unlock()
			if *util {
				fmt.Fprint(os.Stderr, rec.Table(0))
			}
			if *traceOut != "" {
				f, err := os.Create(*traceOut)
				if err == nil {
					err = trace.WriteChrome(f, rec)
					if cerr := f.Close(); err == nil {
						err = cerr
					}
				}
				if err != nil {
					log.Printf("raidfsd: trace: %v", err)
				} else {
					log.Printf("raidfsd: wrote trace to %s", *traceOut)
				}
			}
			os.Exit(0)
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("raidfsd: simulated RAID-II serving on %s", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		//lint:allow rawgo real network daemon, not simulation code; each connection is serialized onto the engine inside serve
		go st.serve(conn)
	}
}

func (st *serverState) serve(conn net.Conn) {
	defer conn.Close() //lint:allow errdrop per-connection teardown; a close error is not actionable
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	defer w.Flush() //lint:allow errdrop best-effort final flush; the client may already be gone
	for {
		if err := w.Flush(); err != nil {
			return // client hung up mid-reply
		}
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 0 {
			continue
		}
		cmd := strings.ToUpper(fields[0])
		if cmd == "QUIT" {
			fmt.Fprintf(w, "OK bye\n")
			return
		}
		if err := st.dispatch(cmd, fields[1:], r, w); err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
		}
	}
}

func (st *serverState) dispatch(cmd string, args []string, r *bufio.Reader, w *bufio.Writer) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	switch cmd {
	case "CREATE":
		if len(args) != 1 {
			return fmt.Errorf("usage: CREATE <path>")
		}
		d, err := st.srv.Simulate(func(t *raidii.Task) error {
			_, err := t.Create(args[0])
			return err
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "OK %d\n", d.Microseconds())
	case "OPEN":
		if len(args) != 1 {
			return fmt.Errorf("usage: OPEN <path>")
		}
		var size int64
		_, err := st.srv.Simulate(func(t *raidii.Task) error {
			f, err := t.Open(args[0])
			if err != nil {
				return err
			}
			size, err = f.Size()
			return err
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "OK %d\n", size)
	case "WRITE":
		var off int64
		var n int
		if len(args) != 3 {
			return fmt.Errorf("usage: WRITE <path> <off> <n>")
		}
		fmt.Sscanf(args[1], "%d", &off)
		fmt.Sscanf(args[2], "%d", &n)
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		d, err := st.srv.Simulate(func(t *raidii.Task) error {
			f, err := t.Open(args[0])
			if err != nil {
				f, err = t.Create(args[0])
				if err != nil {
					return err
				}
			}
			_, werr := f.Write(off, buf)
			return werr
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "OK %d\n", d.Microseconds())
	case "READ":
		var off int64
		var n int
		if len(args) != 3 {
			return fmt.Errorf("usage: READ <path> <off> <n>")
		}
		fmt.Sscanf(args[1], "%d", &off)
		fmt.Sscanf(args[2], "%d", &n)
		var dur time.Duration
		var data []byte
		_, err := st.srv.Simulate(func(t *raidii.Task) error {
			f, err := t.Open(args[0])
			if err != nil {
				return err
			}
			size, err := f.Size()
			if err != nil {
				return err
			}
			m := size - off
			if m > int64(n) {
				m = int64(n)
			}
			if m < 0 {
				m = 0
			}
			data, dur, err = f.Read(off, int(m))
			return err
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "OK %d %d\n", len(data), dur.Microseconds())
		// The wire carries the bytes the simulated store actually holds.
		if _, err := w.Write(data); err != nil {
			return err
		}
	case "MKDIR":
		if len(args) != 1 {
			return fmt.Errorf("usage: MKDIR <path>")
		}
		if _, err := st.srv.Simulate(func(t *raidii.Task) error { return t.Mkdir(args[0]) }); err != nil {
			return err
		}
		fmt.Fprintf(w, "OK\n")
	case "LS":
		path := "/"
		if len(args) == 1 {
			path = args[0]
		}
		var lines []string
		_, err := st.srv.Simulate(func(t *raidii.Task) error {
			ents, err := t.ReadDir(path)
			if err != nil {
				return err
			}
			for _, e := range ents {
				fi, err := t.Stat(strings.TrimSuffix(path, "/") + "/" + e.Name)
				if err != nil {
					return err
				}
				kind := "f"
				if fi.IsDir() {
					kind = "d"
				}
				lines = append(lines, fmt.Sprintf("%s %10d %s", kind, fi.Size, e.Name))
			}
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "OK %d\n", len(lines))
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
	case "RM":
		if len(args) != 1 {
			return fmt.Errorf("usage: RM <path>")
		}
		if _, err := st.srv.Simulate(func(t *raidii.Task) error { return t.Remove(args[0]) }); err != nil {
			return err
		}
		fmt.Fprintf(w, "OK\n")
	case "SYNC":
		d, err := st.srv.Simulate(func(t *raidii.Task) error { return t.Sync() })
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "OK %d\n", d.Microseconds())
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}
