package raidii

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"raidii/internal/fault"
	"raidii/internal/metrics"
	"raidii/internal/raid"
	"raidii/internal/server"
	"raidii/internal/sim"
	"raidii/internal/telemetry"
	"raidii/internal/workload"
)

// This file holds the robustness experiments added with the NVRAM staging
// log and the RAID-6 array: small-write latency with and without
// battery-backed staging, and a scripted double-disk-failure timeline.

// nvFill produces one small write's deterministic payload.
func nvFill(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*7 + seed
	}
	return b
}

// SmallWriteLatencyResult compares the per-request latency distribution of
// durable 4 KB writes on two otherwise identical machines: one staging
// through battery-backed NVRAM, one forced to seal an LFS segment before
// every acknowledgement.
type SmallWriteLatencyResult struct {
	Ops     int
	RecSize int

	Staged   LatencyStats // NVRAM staging: ack once the record is battery-backed
	Unstaged LatencyStats // synchronous path: write through LFS and sync

	Commits       uint64 // background group commits the staged run completed
	CommitRecords uint64
	Degraded      uint64 // staged-run writes that hit ErrNVRAMFull back-pressure
}

// SmallWriteLatency measures the latency a synchronous small write pays
// with and without the NVRAM staging log (§3.3's small-write problem moved
// up to the file-server level, following Baker et al.'s NVRAM write
// caching).  Both runs issue the same durable 4 KB writes; the staged run
// acknowledges out of battery-backed DRAM and group-commits in the
// background, the unstaged run seals a segment per write.  Every record is
// verified by read-back after a final drain, so the latency win is never
// bought with durability.
func SmallWriteLatency() (SmallWriteLatencyResult, error) {
	out := SmallWriteLatencyResult{Ops: 256, RecSize: 4 << 10}
	for _, staged := range []bool{true, false} {
		cfg := server.Fig8Config()
		label := "unstaged"
		if staged {
			cfg.NVRAMBytes = 1 << 20
			label = "staged"
		}
		sys, err := server.New(cfg)
		if err != nil {
			return out, err
		}
		attachProbe("smallwrite/"+label, sys.Eng)
		telemetry.Attach(sys.Eng)
		b := sys.Boards[0]

		var f *server.FSFile
		var opErr error
		sys.Eng.Spawn("format", func(p *sim.Proc) {
			if opErr = b.FormatFS(p); opErr != nil {
				return
			}
			if f, opErr = b.CreateFS(p, "/smallwrites"); opErr != nil {
				return
			}
			opErr = b.FS.Checkpoint(p)
		})
		sys.Eng.Run()
		if opErr != nil {
			return out, opErr
		}

		// Each op writes its own 4 KB record; the shared index is safe
		// under the cooperative scheduler.
		var next int
		workload.FixedOps(sys.Eng, outstanding, out.Ops, func(p *sim.Proc, _ int, _ *rand.Rand) int {
			i := next
			next++
			err := b.DurableWrite(p, f, int64(i)*int64(out.RecSize), nvFill(out.RecSize, byte(i)))
			if err != nil && opErr == nil {
				opErr = err
			}
			return out.RecSize
		})
		if opErr != nil {
			return out, opErr
		}

		// Quiesce and verify: every acknowledged record must read back.
		sys.Eng.Spawn("verify", func(p *sim.Proc) {
			if err := b.DrainNVRAM(p); err != nil && opErr == nil {
				opErr = err
			}
			for i := 0; i < out.Ops; i++ {
				got, err := b.FSRead(p, f, int64(i)*int64(out.RecSize), out.RecSize)
				if err != nil {
					if opErr == nil {
						opErr = err
					}
					return
				}
				if !bytes.Equal(got, nvFill(out.RecSize, byte(i))) && opErr == nil {
					opErr = fmt.Errorf("raidii: smallwrite %s: record %d lost or corrupt", label, i)
				}
			}
		})
		sys.Eng.Run()
		if opErr != nil {
			return out, opErr
		}

		if staged {
			out.Staged = latencyStats(sys.Eng, "small-write")
			st := b.NVRAMStats()
			out.Commits = st.Log.Commits
			out.CommitRecords = st.Log.CommitRecords
			out.Degraded = st.Log.Degraded
		} else {
			out.Unstaged = latencyStats(sys.Eng, "small-write")
		}
	}
	return out, nil
}

// DoubleFaultTimelineResult reports a RAID-6 board riding out two
// overlapping whole-disk failures: the bandwidth timeline across both
// events, correctness of every byte served while double-degraded, and the
// recovered fraction of healthy bandwidth after both rebuilds.
type DoubleFaultTimelineResult struct {
	Fig          *Figure
	FirstFailAt  time.Duration
	SecondFailAt time.Duration

	HealthyMBps        float64 // before the first failure
	DoubleDegradedMBps float64 // after the second failure
	PostRebuildMBps    float64
	RecoveredFrac      float64 // PostRebuild / Healthy

	RebuildDuration time.Duration // both sequential rebuilds, wall clock
	DegradedReads   uint64
	DataIntact      bool // double-degraded and post-rebuild read-backs matched
}

// DoubleFaultTimeline scripts the double-failure scenario RAID-6 exists
// for (§2.1's parity discussion taken one failure further): two disks of a
// 16-disk Level-6 board fail 1 s apart under streaming 1 MB reads.  The
// run verifies a seeded region byte-for-byte while both failures are
// outstanding, hot-rebuilds each disk onto a spare, verifies again, and
// reports per-250 ms bandwidth across the whole event.  Identical plans
// yield byte-identical traces.
func DoubleFaultTimeline() (DoubleFaultTimelineResult, error) {
	const (
		firstFail  = 2 * time.Second
		secondFail = 3 * time.Second
		failA      = 3
		failB      = 9
	)
	out := DoubleFaultTimelineResult{FirstFailAt: firstFail, SecondFailAt: secondFail}
	cfg := server.Fig8Config()
	cfg.DiskSpec.Cylinders = 64 // small disks keep the two rebuilds short
	cfg.RAIDLevel = raid.Level6
	cfg.Faults = fault.Plan{}.
		DiskFailAt(firstFail, 0, failA).
		DiskFailAt(secondFail, 0, failB)
	sys, err := server.New(cfg)
	if err != nil {
		return out, err
	}
	attachProbe("doublefault", sys.Eng)
	b := sys.Boards[0]
	space := b.Array.Sectors()
	const size = 1 << 20
	const align = int64(size / 512)

	// Seed a region with known bytes so correctness under failure is
	// checked against ground truth, not just against the array's own
	// parity.  Whole aligned stripes take the full-stripe write path, so
	// seeding stays well clear of the first scripted failure.
	seedSecs := b.Array.DataDisks() * b.Array.StripeUnitSectors() * 4
	seedBytes := seedSecs * 512
	seed := nvFill(seedBytes, 1)
	var opErr error
	var seedEnd time.Duration
	// The seed proc and the streaming workload share one engine run: the
	// fault plan's events are already scheduled on the absolute clock, so a
	// separate seeding run would drain them before the stream starts.
	sys.Eng.Spawn("seed", func(p *sim.Proc) {
		if err := b.Array.Write(p, 0, seed); err != nil && opErr == nil {
			opErr = err
		}
		seedEnd = time.Duration(sim.Duration(p.Now()))
	})

	// The streaming phase spans both failures: per-bucket byte counts give
	// the bandwidth timeline.
	const bucket = 250 * time.Millisecond
	var bucketBytes [32]uint64
	res := workload.FixedOps(sys.Eng, outstanding, 64, func(p *sim.Proc, _ int, rng *rand.Rand) int {
		off := workload.RandomAligned(rng, space-align, align)
		if err := b.HardwareRead(p, off, size); err != nil && opErr == nil {
			opErr = err
		}
		if i := int(time.Duration(p.Now()) / bucket); i < len(bucketBytes) {
			bucketBytes[i] += size
		}
		return size
	})
	if opErr != nil {
		return out, opErr
	}
	if seedEnd >= firstFail {
		return out, fmt.Errorf("raidii: doublefault: seeding ran past the first failure (%v)", seedEnd)
	}
	if b.Array.Lost() {
		return out, fmt.Errorf("raidii: doublefault: two failures latched a Level-6 array as failed")
	}

	// Every byte served while both failures are outstanding must be
	// correct — the P+Q solve, not zeros.
	intact := true
	sys.Eng.Spawn("verify-degraded", func(p *sim.Proc) {
		got, err := b.Array.Read(p, 0, seedSecs)
		if err != nil {
			opErr = err
			return
		}
		intact = bytes.Equal(got, seed)
	})
	sys.Eng.Run()
	if opErr != nil {
		return out, opErr
	}
	if !intact {
		return out, fmt.Errorf("raidii: doublefault: double-degraded read returned wrong bytes")
	}
	if !b.Array.Failed(failA) || !b.Array.Failed(failB) {
		return out, fmt.Errorf("raidii: doublefault: scripted failures did not escalate to the array")
	}

	// Hot-rebuild both disks, one after the other: the first rebuild runs
	// with the second failure still outstanding.
	rebuildStart := sys.Eng.Now()
	for _, idx := range []int{failA, failB} {
		rb, err := b.ReplaceDisk(idx)
		if err != nil {
			return out, err
		}
		sys.Eng.Spawn("rebuild-wait", func(p *sim.Proc) {
			if _, werr := rb.Wait(p); werr != nil && opErr == nil {
				opErr = werr
			}
		})
		sys.Eng.Run()
		if opErr != nil {
			return out, opErr
		}
	}
	out.RebuildDuration = time.Duration(sim.Duration(sys.Eng.Now() - rebuildStart))

	// Post-rebuild: the array is healthy again; measure recovered
	// bandwidth and verify the seeded region one last time.
	start := sys.Eng.Now()
	post := workload.FixedOps(sys.Eng, outstanding, 24, func(p *sim.Proc, _ int, rng *rand.Rand) int {
		off := workload.RandomAligned(rng, space-align, align)
		if err := b.HardwareRead(p, off, size); err != nil && opErr == nil {
			opErr = err
		}
		return size
	})
	post.Elapsed = sim.Duration(sys.Eng.Now() - start)
	if opErr != nil {
		return out, opErr
	}
	out.PostRebuildMBps = post.MBps()
	sys.Eng.Spawn("verify-healthy", func(p *sim.Proc) {
		got, err := b.Array.Read(p, 0, seedSecs)
		if err != nil {
			opErr = err
			return
		}
		intact = intact && bytes.Equal(got, seed)
		if bad := b.Array.CheckParity(p); bad != 0 && opErr == nil {
			opErr = fmt.Errorf("raidii: doublefault: %d inconsistent stripes after both rebuilds", bad)
		}
	})
	sys.Eng.Run()
	if opErr != nil {
		return out, opErr
	}
	if !intact {
		return out, fmt.Errorf("raidii: doublefault: post-rebuild read returned wrong bytes")
	}
	out.DataIntact = true

	fig := metrics.NewFigure("Double fault timeline: two overlapping disk failures (RAID-6)", "ms", "MB/s")
	series := fig.AddSeries("1 MB random reads")
	var preBytes, dblBytes uint64
	var preDur, dblDur time.Duration
	for i, n := range bucketBytes {
		end := time.Duration(i+1) * bucket
		if time.Duration(res.Elapsed) < end-bucket {
			break
		}
		series.Add(float64(end.Milliseconds()), float64(n)/bucket.Seconds()/1e6)
		switch {
		case end <= firstFail:
			preBytes += n
			preDur += bucket
		case end > secondFail:
			dblBytes += n
			dblDur += bucket
		}
	}
	out.Fig = fig
	if preDur > 0 {
		out.HealthyMBps = float64(preBytes) / preDur.Seconds() / 1e6
	}
	if dblDur > 0 {
		out.DoubleDegradedMBps = float64(dblBytes) / dblDur.Seconds() / 1e6
	}
	if out.HealthyMBps > 0 {
		out.RecoveredFrac = out.PostRebuildMBps / out.HealthyMBps
	}
	out.DegradedReads = b.Array.Stats().DegradedReads
	return out, nil
}
