package raidii

import (
	"fmt"
	"strings"

	"raidii/internal/sim"
	"raidii/internal/telemetry"
)

// StageShare is one pipeline stage's mean work per request, for the stage
// breakdown experiments report alongside tail latency.
type StageShare struct {
	Stage  string
	MeanMs float64
}

// LatencyStats condenses one request kind's telemetry for experiment
// results: the tail quantiles of the end-to-end latency histogram plus the
// per-stage work breakdown.  Stage means measure work (per-process
// exclusive time summed across the request's processes), so overlapped
// legs can sum past the wall-clock latency — like CPU seconds on a
// multicore.  Zero-valued when the engine had no telemetry attached or the
// kind completed no requests.
type LatencyStats struct {
	Kind   string
	N      uint64
	MeanMs float64
	P50Ms  float64
	P99Ms  float64
	P999Ms float64
	MaxMs  float64
	Stages []StageShare

	Degraded uint64 // requests served over a degraded path
	Shed     uint64 // requests refused at least once by admission control
	Retried  uint64 // requests that needed at least one retry
}

// ms converts a simulated duration to milliseconds.
func ms(d sim.Duration) float64 { return float64(d) / 1e6 }

// latencyStats summarizes one request kind from the engine's telemetry
// registry (zero-valued when none is attached).
func latencyStats(e *sim.Engine, kind string) LatencyStats {
	out := LatencyStats{Kind: kind}
	reg := telemetry.From(e)
	if reg == nil {
		return out
	}
	s := reg.Summary(kind)
	out.N = s.N
	out.MeanMs = ms(s.Mean)
	out.P50Ms = ms(s.P50)
	out.P99Ms = ms(s.P99)
	out.P999Ms = ms(s.P999)
	out.MaxMs = ms(s.Max)
	for _, st := range s.Stages {
		out.Stages = append(out.Stages, StageShare{Stage: st.Stage, MeanMs: ms(st.Mean)})
	}
	out.Degraded = s.Degraded
	out.Shed = s.Shed
	out.Retried = s.Retried
	return out
}

// String renders the stats as the one- or two-line report raidbench prints
// under an experiment's bandwidth numbers.
func (ls LatencyStats) String() string {
	if ls.N == 0 {
		return fmt.Sprintf("%s: no latency samples", ls.Kind)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s latency (n=%d): p50 %.2f ms  p99 %.2f ms  p999 %.2f ms  mean %.2f ms  max %.2f ms",
		ls.Kind, ls.N, ls.P50Ms, ls.P99Ms, ls.P999Ms, ls.MeanMs, ls.MaxMs)
	if ls.Degraded+ls.Shed+ls.Retried > 0 {
		fmt.Fprintf(&b, "  (%d degraded, %d shed, %d retried)", ls.Degraded, ls.Shed, ls.Retried)
	}
	if len(ls.Stages) > 0 {
		b.WriteString("\n      stages (mean work/req):")
		for _, st := range ls.Stages {
			fmt.Fprintf(&b, " %s %.2fms", st.Stage, st.MeanMs)
		}
	}
	return b.String()
}
