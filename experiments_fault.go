package raidii

import (
	"math/rand"
	"time"

	"raidii/internal/fault"
	"raidii/internal/metrics"
	"raidii/internal/server"
	"raidii/internal/sim"
	"raidii/internal/workload"
)

// This file holds the fault-injection experiments: degraded-mode and
// rebuild-under-load bandwidth (the cost of the paper's single-failure
// operating region), and a scripted fault timeline showing the array
// absorbing a disk failure mid-stream.

// RebuildUnderLoadResult reports foreground 1 MB random-read bandwidth
// through the four phases of a disk failure's lifetime, plus the rebuild
// itself.
type RebuildUnderLoadResult struct {
	HealthyMBps     float64
	DegradedMBps    float64
	RebuildingMBps  float64 // foreground reads while the hot rebuild runs
	PostRebuildMBps float64
	RebuildDuration time.Duration
	RebuildMBps     float64 // reconstruction rate onto the spare
	RebuildStripes  int64
}

// RebuildUnderLoad measures the Fig8 array's foreground read bandwidth
// healthy, degraded after a disk failure, while a background hot rebuild
// contends with the foreground traffic for the surviving spindles, and
// after the spare is swapped in.
func RebuildUnderLoad() (RebuildUnderLoadResult, error) {
	var out RebuildUnderLoadResult
	sys, err := server.New(server.Fig8Config())
	if err != nil {
		return out, err
	}
	attachProbe("rebuild-load", sys.Eng)
	b := sys.Boards[0]
	space := b.Array.Sectors()
	const size = 1 << 20
	const align = int64(size / 512)

	measure := func() (float64, error) {
		start := sys.Eng.Now()
		var opErr error
		res := workload.FixedOps(sys.Eng, outstanding, 24, func(p *sim.Proc, _ int, rng *rand.Rand) int {
			off := workload.RandomAligned(rng, space-align, align)
			if err := b.HardwareRead(p, off, size); err != nil && opErr == nil {
				opErr = err
			}
			return size
		})
		res.Elapsed = sim.Duration(sys.Eng.Now() - start)
		return res.MBps(), opErr
	}

	if out.HealthyMBps, err = measure(); err != nil {
		return out, err
	}

	const failIdx = 3
	if err := b.Array.FailDisk(failIdx); err != nil {
		return out, err
	}
	b.Disks[failIdx].Drive.Fail()
	if out.DegradedMBps, err = measure(); err != nil {
		return out, err
	}

	// Replace the disk and run foreground reads while the rebuild streams in
	// the background; both contend for the surviving disks and strings.
	phaseStart := sys.Eng.Now()
	rb, err := b.ReplaceDisk(failIdx)
	if err != nil {
		return out, err
	}
	var fgBytes uint64
	var fgEnd sim.Time
	g := sim.NewGroup(sys.Eng)
	for w := 0; w < outstanding; w++ {
		rng := rand.New(rand.NewSource(int64(7919*w + 3)))
		g.Go("fg-read", func(p *sim.Proc) {
			for i := 0; i < 8; i++ {
				off := workload.RandomAligned(rng, space-align, align)
				if rerr := b.HardwareRead(p, off, size); rerr != nil && err == nil {
					err = rerr
				}
				fgBytes += size
				if p.Now() > fgEnd {
					fgEnd = p.Now()
				}
			}
		})
	}
	var rebEnd sim.Time
	sys.Eng.Spawn("rebuild-wait", func(p *sim.Proc) {
		var werr error
		out.RebuildStripes, werr = rb.Wait(p)
		if err == nil {
			err = werr
		}
		rebEnd = p.Now()
	})
	sys.Eng.Run()
	if err != nil {
		return out, err
	}
	out.RebuildingMBps = float64(fgBytes) / fgEnd.Sub(phaseStart).Seconds() / 1e6
	out.RebuildDuration = time.Duration(rebEnd.Sub(phaseStart))
	rebuilt := float64(out.RebuildStripes) * float64(b.Array.StripeUnitSectors()) * 512
	out.RebuildMBps = rebuilt / out.RebuildDuration.Seconds() / 1e6

	if out.PostRebuildMBps, err = measure(); err != nil {
		return out, err
	}
	return out, nil
}

// FaultTimelineResult pairs the per-interval bandwidth timeline with the
// fault counters the run accumulated.
type FaultTimelineResult struct {
	Fig          *Figure
	FailAt       time.Duration
	DeviceErrors uint64
	DiskFailures uint64
	HealthyMBps  float64 // mean bandwidth before the failure
	DegradedMBps float64 // mean bandwidth after the failure
}

// FaultTimeline runs a scripted fault plan — one whole-disk failure partway
// through a streaming read — and reports the read bandwidth in 250 ms
// intervals across the event: the drop from healthy to degraded is the
// fault's visible cost, and identical plans yield byte-identical traces.
func FaultTimeline() (FaultTimelineResult, error) {
	const failAt = 1 * time.Second
	out := FaultTimelineResult{FailAt: failAt}
	cfg := server.Fig8Config()
	cfg.Faults = fault.Plan{}.DiskFailAt(failAt, 0, 3)
	sys, err := server.New(cfg)
	if err != nil {
		return out, err
	}
	attachProbe("fault-timeline", sys.Eng)
	b := sys.Boards[0]
	space := b.Array.Sectors()
	const size = 1 << 20
	const align = int64(size / 512)

	// Per-interval bandwidth accounting: each completed op credits its bytes
	// to the 250 ms bucket it finished in.
	const bucket = 250 * time.Millisecond
	var bucketBytes [12]uint64
	var opErr error
	res := workload.FixedOps(sys.Eng, outstanding, 56, func(p *sim.Proc, _ int, rng *rand.Rand) int {
		off := workload.RandomAligned(rng, space-align, align)
		if err := b.HardwareRead(p, off, size); err != nil && opErr == nil {
			opErr = err
		}
		if i := int(time.Duration(p.Now()) / bucket); i < len(bucketBytes) {
			bucketBytes[i] += size
		}
		return size
	})
	if opErr != nil {
		return out, opErr
	}

	fig := metrics.NewFigure("Fault timeline: disk failure under streaming reads", "ms", "MB/s")
	series := fig.AddSeries("1 MB random reads")
	var preBytes, postBytes uint64
	var preDur, postDur time.Duration
	for i, n := range bucketBytes {
		end := time.Duration(i+1) * bucket
		if time.Duration(res.Elapsed) < end-bucket {
			break
		}
		series.Add(float64(end.Milliseconds()), float64(n)/bucket.Seconds()/1e6)
		if end <= failAt {
			preBytes += n
			preDur += bucket
		} else {
			postBytes += n
			postDur += bucket
		}
	}
	out.Fig = fig
	if preDur > 0 {
		out.HealthyMBps = float64(preBytes) / preDur.Seconds() / 1e6
	}
	if postDur > 0 {
		out.DegradedMBps = float64(postBytes) / postDur.Seconds() / 1e6
	}
	st := b.Array.Stats()
	out.DeviceErrors = st.DeviceErrors
	out.DiskFailures = st.DiskFailures
	return out, nil
}
