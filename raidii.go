// Package raidii is a Go reproduction of RAID-II, the Berkeley
// high-bandwidth network file server (Drapeau et al., 1994).  It assembles
// the complete system in simulation — IBM 0661 disks on SCSI strings
// behind Interphase Cougar controllers, the custom XBUS crossbar board
// with its parity engine and HIPPI source/destination ports, the Sun 4/280
// host with its slow memory system, a RAID Level 5 array, and the
// Log-Structured File System — and exposes the paper's workloads and
// experiments through a small API.
//
// Everything is functional as well as temporal: files really are stored
// through LFS segments onto parity-protected striped disks, while a
// deterministic discrete-event simulation accounts the time every byte
// spends on strings, buses, ports and platters.  Throughput numbers are
// simulated megabytes/second (decimal, as in the paper).
//
// Quick start:
//
//	srv, _ := raidii.NewServer()
//	srv.Simulate(func(t *raidii.Task) error {
//		t.FormatFS()
//		f, _ := t.Create("/data/video.raw")
//		f.Write(0, make([]byte, 8<<20))
//		t.Sync()
//		_, err := f.Read(0, 8<<20)
//		return err
//	})
package raidii

import (
	"time"

	"raidii/internal/disk"
	"raidii/internal/host"
	"raidii/internal/lfs"
	"raidii/internal/raid"
	"raidii/internal/server"
	"raidii/internal/sim"
)

// Option customizes the server assembly.
type Option func(*server.Config)

// WithBoards sets the number of XBUS controller boards (§2.1.2: "The
// bandwidth of the RAID-II storage server can be scaled by adding XBUS
// controller boards").
func WithBoards(n int) Option { return func(c *server.Config) { c.Boards = n } }

// WithDisksPerString sets the drives per SCSI string (3 in the paper's 24
// disk hardware configuration, 2 in the 16-disk LFS configuration).
func WithDisksPerString(n int) Option {
	return func(c *server.Config) { c.DisksPerString = n }
}

// WithFifthCougar attaches the extra disk controller through the XBUS
// control-bus port, as in the Table 1 peak-bandwidth experiment.
func WithFifthCougar() Option { return func(c *server.Config) { c.FifthCougar = true } }

// WithRAIDLevel selects the array organization (default Level 5).
func WithRAIDLevel(l int) Option {
	return func(c *server.Config) { c.RAIDLevel = raid.Level(l) }
}

// WithStripeUnitKB sets the striping unit (default 64 KB).
func WithStripeUnitKB(kb int) Option {
	return func(c *server.Config) { c.StripeUnitSectors = kb * 1024 / 512 }
}

// WithSegmentKB sets the LFS segment size (default 960 KB).
func WithSegmentKB(kb int) Option {
	return func(c *server.Config) { c.LFS.SegBytes = kb << 10 }
}

// WithWrenDisks swaps in the older Wren IV drives of RAID-I.
func WithWrenDisks() Option {
	return func(c *server.Config) { c.DiskSpec = disk.WrenIV() }
}

// Fig8Geometry selects the paper's LFS measurement configuration: 16 disks,
// 64 KB striping, 960 KB segments.
func Fig8Geometry() Option {
	return func(c *server.Config) { *c = server.Fig8Config() }
}

// Server is an assembled RAID-II system plus its simulation engine.
type Server struct {
	sys *server.System
}

// NewServer assembles a RAID-II server.  With no options this is the
// paper's measured machine: one XBUS board, four Cougars, 24 IBM 0661
// disks as one RAID Level 5 group with 64 KB striping.
func NewServer(opts ...Option) (*Server, error) {
	cfg := server.DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	sys, err := server.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Server{sys: sys}, nil
}

// Sys exposes the underlying assembly for advanced use (and for the
// benchmark harness).
func (s *Server) Sys() *server.System { return s.sys }

// Simulate runs fn as a simulated process, drives the simulation until all
// resulting activity completes, and returns the simulated time consumed.
// It may be called repeatedly; simulated time accumulates.
func (s *Server) Simulate(fn func(t *Task) error) (time.Duration, error) {
	start := s.sys.Eng.Now()
	var err error
	s.sys.Eng.Spawn("task", func(p *sim.Proc) {
		err = fn(&Task{p: p, srv: s})
	})
	end := s.sys.Eng.Run()
	return end.Sub(start), err
}

// Now returns the current simulated time.
func (s *Server) Now() time.Duration { return time.Duration(s.sys.Eng.Now()) }

// Task is the handle model code uses inside Simulate: all file system and
// data path operations charge simulated time to the calling process.
type Task struct {
	p   *sim.Proc
	srv *Server
}

// Board selects an XBUS board (0 unless WithBoards was used).
func (t *Task) board(i int) *server.Board { return t.srv.sys.Boards[i] }

// FormatFS creates the LFS on every board.
func (t *Task) FormatFS() error {
	for _, b := range t.srv.sys.Boards {
		if err := b.FormatFS(t.p); err != nil {
			return err
		}
	}
	return nil
}

// Create makes a new file on board 0 and returns a handle.
func (t *Task) Create(path string) (*File, error) { return t.CreateOn(0, path) }

// CreateOn makes a new file on the given board.
func (t *Task) CreateOn(board int, path string) (*File, error) {
	f, err := t.board(board).CreateFS(t.p, path)
	if err != nil {
		return nil, err
	}
	return &File{t: t, f: f}, nil
}

// Open opens an existing file on board 0.
func (t *Task) Open(path string) (*File, error) { return t.OpenOn(0, path) }

// OpenOn opens an existing file on the given board.
func (t *Task) OpenOn(board int, path string) (*File, error) {
	f, err := t.board(board).OpenFS(t.p, path)
	if err != nil {
		return nil, err
	}
	return &File{t: t, f: f}, nil
}

// Mkdir creates a directory on board 0's file system.
func (t *Task) Mkdir(path string) error { return t.board(0).FS.Mkdir(t.p, path) }

// Remove unlinks a file or empty directory on board 0.
func (t *Task) Remove(path string) error { return t.board(0).FS.Remove(t.p, path) }

// ReadDir lists a directory on board 0.
func (t *Task) ReadDir(path string) ([]lfs.DirEntry, error) {
	return t.board(0).FS.ReadDir(t.p, path)
}

// Stat describes a path on board 0.
func (t *Task) Stat(path string) (lfs.FileInfo, error) {
	return t.board(0).FS.Stat(t.p, path)
}

// Sync makes all completed operations durable on every board.
func (t *Task) Sync() error {
	for _, b := range t.srv.sys.Boards {
		if b.FS == nil {
			continue
		}
		if err := b.FS.Sync(t.p); err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint writes an LFS checkpoint on every board.
func (t *Task) Checkpoint() error {
	for _, b := range t.srv.sys.Boards {
		if b.FS == nil {
			continue
		}
		if err := b.FS.Checkpoint(t.p); err != nil {
			return err
		}
	}
	return nil
}

// Clean runs the segment cleaner on board 0 until target free segments.
func (t *Task) Clean(target int) (int, error) {
	return t.board(0).FS.Clean(t.p, target)
}

// Wait advances simulated time.
func (t *Task) Wait(d time.Duration) { t.p.Wait(d) }

// Elapsed returns simulated time since the start of the simulation.
func (t *Task) Elapsed() time.Duration { return time.Duration(t.p.Now()) }

// HardwareRead performs the raw high-bandwidth-path read of §2.3 (array ->
// XBUS memory -> HIPPI loop) without any file system, as in Figure 5.
func (t *Task) HardwareRead(offsetBytes int64, size int) {
	t.board(0).HardwareRead(t.p, offsetBytes/512, size)
}

// HardwareWrite performs the raw high-bandwidth-path write of §2.3.
func (t *Task) HardwareWrite(offsetBytes int64, size int) {
	t.board(0).HardwareWrite(t.p, offsetBytes/512, size)
}

// ArrayCapacity returns the logical capacity in bytes of board 0's array.
func (t *Task) ArrayCapacity() int64 {
	return t.board(0).Array.Sectors() * int64(t.board(0).Array.SectorSize())
}

// File is an open file on the server, accessed over the high-bandwidth
// path (reads stream from the array into HIPPI network buffers in XBUS
// memory, writes land in LFS segment buffers).
type File struct {
	t *Task
	f *server.FSFile
}

// Write stores data at off through the LFS write path.
func (f *File) Write(off int64, data []byte) error {
	return f.f.Board.FSWrite(f.t.p, f.f, off, data)
}

// Read moves n bytes at off through the high-bandwidth read path and
// returns the simulated duration of the transfer.
func (f *File) Read(off int64, n int) (time.Duration, error) {
	start := f.t.p.Now()
	err := f.f.Board.FSRead(f.t.p, f.f, off, n)
	return f.t.p.Now().Sub(start), err
}

// ReadEthernet moves n bytes over the low-bandwidth standard-mode path
// (XBUS -> host memory -> Ethernet).
func (f *File) ReadEthernet(off int64, n int) (time.Duration, error) {
	start := f.t.p.Now()
	err := f.f.Board.EtherRead(f.t.p, f.f, off, n)
	return f.t.p.Now().Sub(start), err
}

// Size returns the file's size.
func (f *File) Size() (int64, error) { return f.f.File.Size(f.t.p) }

// NewSPARCClient attaches a SPARCstation 10/51 client workstation to the
// server's Ultranet, as in the §3.4 network measurements.
func (s *Server) NewSPARCClient(name string) *Client {
	return &Client{srv: s, cfg: host.SPARCstation10(), name: name}
}

// Client is a HIPPI-attached client workstation (see package
// internal/client for the underlying model).
type Client struct {
	srv  *Server
	cfg  host.Config
	name string
}

// HostConfig returns the client's workstation model.
func (c *Client) HostConfig() host.Config { return c.cfg }

// Name returns the client's name.
func (c *Client) Name() string { return c.name }
