// Package raidii is a Go reproduction of RAID-II, the Berkeley
// high-bandwidth network file server (Drapeau et al., 1994).  It assembles
// the complete system in simulation — IBM 0661 disks on SCSI strings
// behind Interphase Cougar controllers, the custom XBUS crossbar board
// with its parity engine and HIPPI source/destination ports, the Sun 4/280
// host with its slow memory system, a RAID Level 5 array, and the
// Log-Structured File System — and exposes the paper's workloads and
// experiments through a small API.
//
// Everything is functional as well as temporal: files really are stored
// through LFS segments onto parity-protected striped disks, while a
// deterministic discrete-event simulation accounts the time every byte
// spends on strings, buses, ports and platters.  Throughput numbers are
// simulated megabytes/second (decimal, as in the paper).
//
// Quick start:
//
//	srv, err := raidii.NewServer()
//	if err != nil {
//		log.Fatal(err)
//	}
//	_, err = srv.Simulate(func(t *raidii.Task) error {
//		if err := t.FormatFS(); err != nil {
//			return err
//		}
//		f, err := t.Create("/data/video.raw")
//		if err != nil {
//			return err
//		}
//		if _, err := f.Write(0, make([]byte, 8<<20)); err != nil {
//			return err
//		}
//		if err := t.Sync(); err != nil {
//			return err
//		}
//		_, _, err = f.Read(0, 8<<20)
//		return err
//	})
//
// Every file system operation is available per board through Task.Board;
// the Task-level methods are conveniences for board 0.  Deterministic
// hardware faults are scripted with a FaultPlan passed to WithFaultPlan,
// or injected mid-run through the Board handle.
//
// NewCluster scales the same machine out the way §2.1.2 intends: several
// server hosts on one Ultranet ring, files striped across them with
// cross-server parity (see Cluster).  NewServer remains the single-host
// special case.
package raidii

import (
	"time"

	"raidii/internal/cache"
	"raidii/internal/disk"
	"raidii/internal/fault"
	"raidii/internal/host"
	"raidii/internal/lfs"
	"raidii/internal/raid"
	"raidii/internal/server"
	"raidii/internal/sim"
	"raidii/internal/xbus"
)

// FaultPlan scripts deterministic hardware faults — disk failures, latent
// sector errors, SCSI-string stalls, file system crashes — fired at
// simulated times or drive operation counts.  The zero value injects
// nothing; builder methods chain:
//
//	raidii.FaultPlan{}.DiskFailAt(2*time.Second, 0, 3)
type FaultPlan = fault.Plan

// Sentinel errors surfaced by the public API; test with errors.Is.
var (
	// ErrNotExist reports a missing path component.
	ErrNotExist = lfs.ErrNotExist
	// ErrExist reports creating a name that already exists.
	ErrExist = lfs.ErrExist
	// ErrNotDir reports a non-directory path component.
	ErrNotDir = lfs.ErrNotDir
	// ErrIsDir reports a file operation on a directory.
	ErrIsDir = lfs.ErrIsDir
	// ErrNotEmpty reports removing a non-empty directory.
	ErrNotEmpty = lfs.ErrNotEmpty
	// ErrNoSpace reports a full log even after cleaning.
	ErrNoSpace = lfs.ErrNoSpace
	// ErrDiskFailed reports a command to a dead drive.
	ErrDiskFailed = fault.ErrDiskFailed
	// ErrMedium reports an unrecoverable medium error.
	ErrMedium = fault.ErrMedium
	// ErrTimeout reports a command timeout at the disk controller.
	ErrTimeout = fault.ErrTimeout
	// ErrLinkDown reports a transfer attempted over a downed network link.
	ErrLinkDown = fault.ErrLinkDown
	// ErrPacketLost reports a packet dropped by scripted loss.
	ErrPacketLost = fault.ErrPacketLost
	// ErrNetTimeout reports a stalled network endpoint exceeding its timeout.
	ErrNetTimeout = fault.ErrNetTimeout
	// ErrServerBusy reports a request shed by board admission control.
	ErrServerBusy = fault.ErrServerBusy
	// ErrDeadline reports a client request abandoned at its deadline.
	ErrDeadline = fault.ErrDeadline
	// ErrArrayFailed reports reads or writes against an array whose
	// concurrent failures exceed its redundancy (two disks at Level 5,
	// three at Level 6): the data are gone until restored from elsewhere,
	// and the array refuses to fabricate them.
	ErrArrayFailed = raid.ErrArrayFailed
	// ErrNVRAMFull reports a small write the battery-backed staging region
	// could not admit; DurableWrite absorbs it by degrading to the
	// synchronous path, so callers only see it through NVRAMStats.
	ErrNVRAMFull = xbus.ErrNVRAMFull
)

// RetryPolicy governs client-library retries: attempt budget, exponential
// backoff bounds, and an end-to-end deadline.  Retries are deterministic —
// the backoff doubles without jitter on the simulated clock.
type RetryPolicy = fault.RetryPolicy

// NetPort names a network attachment point a scripted fault targets.
type NetPort = fault.NetPort

// Network fault targets for FaultPlan.LinkDownAt and friends.
const (
	// PortUltranetRing is the shared Ultranet ring segment.
	PortUltranetRing = fault.PortRing
	// PortBoardHIPPI is one XBUS board's HIPPI endpoint (index = board).
	PortBoardHIPPI = fault.PortBoardHIPPI
	// PortClientNIC is one client workstation's NIC (index = attach order).
	PortClientNIC = fault.PortClientNIC
	// PortEther is the low-bandwidth Ethernet path.
	PortEther = fault.PortEther
)

// Option customizes the server assembly.
type Option func(*server.Config)

// WithBoards sets the number of XBUS controller boards (§2.1.2: "The
// bandwidth of the RAID-II storage server can be scaled by adding XBUS
// controller boards").
func WithBoards(n int) Option { return func(c *server.Config) { c.Boards = n } }

// WithDisksPerString sets the drives per SCSI string (3 in the paper's 24
// disk hardware configuration, 2 in the 16-disk LFS configuration).
func WithDisksPerString(n int) Option {
	return func(c *server.Config) { c.DisksPerString = n }
}

// WithFifthCougar attaches the extra disk controller through the XBUS
// control-bus port, as in the Table 1 peak-bandwidth experiment.
func WithFifthCougar() Option { return func(c *server.Config) { c.FifthCougar = true } }

// WithRAIDLevel selects the array organization (§2.1: the XBUS board's
// parity engine implements RAID Level 5; other levels are ablations.
// Default Level 5).  Level 6 adds a Reed-Solomon Q column so the array
// survives two concurrent disk failures.
func WithRAIDLevel(l int) Option {
	return func(c *server.Config) { c.RAIDLevel = raid.Level(l) }
}

// WithStripeUnitKB sets the striping unit (§3.3: the measured array uses
// 64 KB stripe units; default 64 KB).
func WithStripeUnitKB(kb int) Option {
	return func(c *server.Config) { c.StripeUnitSectors = kb * 1024 / 512 }
}

// WithSegmentKB sets the LFS segment size (§3.4: LFS writes the log in
// 960 KB segments; default 960 KB).
func WithSegmentKB(kb int) Option {
	return func(c *server.Config) { c.LFS.SegBytes = kb << 10 }
}

// WithWrenDisks swaps in the older Wren IV drives of the §2 RAID-I first
// prototype, for before/after comparisons.
func WithWrenDisks() Option {
	return func(c *server.Config) { c.DiskSpec = disk.WrenIV() }
}

// WithCache carves an XBUS-memory-resident block cache of the given size
// (in bytes) out of each board's 32 MB DRAM.  The datapath consults it
// before issuing array reads: resident blocks are served at crossbar-memory
// cost (hits still cross the crossbar to the HIPPI port), missing blocks
// fill from the array at full disk cost, and LFS segment writes stage
// through it so reads of freshly written data hit memory.  Cache capacity
// and transfer buffers share the DRAM honestly — an oversized cache fails
// NewServer.  (An extension beyond the paper, which dedicates the §2.1
// XBUS memory entirely to transfer buffers.)
func WithCache(bytes int) Option {
	return func(c *server.Config) { c.CacheBytes = bytes }
}

// WithCacheLineKB sets the cache line size (default 64 KB, one stripe
// unit).  Smaller lines suit small-block file-system traffic; larger lines
// suit sequential streams.
func WithCacheLineKB(kb int) Option {
	return func(c *server.Config) { c.CacheLineBytes = kb << 10 }
}

// WithNVRAM carves a battery-backed write-staging region of the given
// size (in bytes) out of each board's 32 MB DRAM.  File.WriteDurable
// acknowledges once its record lands in the region; a background group
// commit folds batches into LFS segments, and after a crash MountFS
// replays the surviving records before the board serves again.  When the
// region fills, writes degrade to the synchronous seal-before-ack path
// (visible as Degraded in NVRAMStats).  The carve-out shares DRAM with
// the cache and transfer buffers — an oversized region fails NewServer.
// (A durability extension in the lineage the paper cites: Baker et al.'s
// non-volatile write caching on Sprite.)
func WithNVRAM(bytes int) Option {
	return func(c *server.Config) { c.NVRAMBytes = bytes }
}

// WithNVRAMCommitKB sets the staged-byte threshold that triggers an NVRAM
// group commit (default 256 KB).
func WithNVRAMCommitKB(kb int) Option {
	return func(c *server.Config) { c.NVRAMCommitBytes = kb << 10 }
}

// WithFaultPlan arms a deterministic fault plan when the server is
// assembled, exercising the §2.1 redundancy machinery (RAID parity,
// controller retries, degraded mode).  An identical plan on an identical
// workload yields a byte-identical trace.  In a Cluster, events carry a
// server index (FaultPlan.OnServer, ServerDownAt) and route to that host.
func WithFaultPlan(plan FaultPlan) Option {
	return func(c *server.Config) { c.Faults = plan }
}

// WithNetworkFaults appends scripted network faults — link flaps, periodic
// packet loss, endpoint stalls — to the plan armed at assembly.  It
// composes with WithFaultPlan: disk and network events may arrive in either
// option, in any order.
func WithNetworkFaults(plan FaultPlan) Option {
	return func(c *server.Config) { c.Faults.Events = append(c.Faults.Events, plan.Events...) }
}

// WithClientRetry sets the retry/timeout policy client workstations inherit
// when they attach, and the policy Cluster file operations use against
// transient ring faults.  The zero policy fails requests on the first
// fault.  (An availability extension beyond the paper's measurements.)
func WithClientRetry(pol RetryPolicy) Option {
	return func(c *server.Config) { c.ClientRetry = pol }
}

// WithAdmissionLimit bounds each board's concurrently serviced client
// requests: n in service, up to n more waiting FIFO, the rest shed
// immediately with ErrServerBusy for the client's backoff to absorb.
// Zero (the default) admits everything.  (An overload-protection extension
// beyond the paper.)
func WithAdmissionLimit(n int) Option {
	return func(c *server.Config) { c.AdmissionLimit = n }
}

// WithServers sets the number of server hosts a Cluster assembles on its
// shared Ultranet ring (§2.1.2: "the bandwidth of the file server can be
// scaled by ... adding multiple storage servers"; default 1).  NewServer
// ignores it.
func WithServers(n int) Option {
	return func(c *server.Config) { c.Servers = n }
}

// WithStripeFragmentKB sets the cluster striping fragment — the bytes of a
// striped file one (server, board) pair stores per stripe (§5.2, Zebra's
// fragment unit).  The default is one LFS segment (960 KB with the paper's
// configuration), so each fragment occupies a contiguous stretch of a
// board's log and streams at full device bandwidth.  NewServer ignores it.
func WithStripeFragmentKB(kb int) Option {
	return func(c *server.Config) { c.StripeFragmentBytes = kb << 10 }
}

// WithCrossParity enables or disables the per-stripe parity fragment that
// lets a Cluster absorb the loss of a whole server host (§5.2, Zebra's
// parity fragment; default on).  Parity needs at least three servers;
// smaller fleets stripe without it.  NewServer ignores it.
func WithCrossParity(on bool) Option {
	return func(c *server.Config) { c.CrossParity = on }
}

// Fig8Geometry selects the paper's LFS measurement configuration: 16 disks,
// 64 KB striping, 960 KB segments.
func Fig8Geometry() Option {
	return func(c *server.Config) { *c = server.Fig8Config() }
}

// Server is an assembled RAID-II system plus its simulation engine.
type Server struct {
	sys *server.System
}

// NewServer assembles a RAID-II server.  With no options this is the
// paper's measured machine: one XBUS board, four Cougars, 24 IBM 0661
// disks as one RAID Level 5 group with 64 KB striping.
func NewServer(opts ...Option) (*Server, error) {
	cfg := server.DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	sys, err := server.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Server{sys: sys}, nil
}

// Sys exposes the underlying assembly for advanced use (and for the
// benchmark harness).
func (s *Server) Sys() *server.System { return s.sys }

// Simulate runs fn as a simulated process, drives the simulation until all
// resulting activity completes, and returns the simulated time consumed.
// It may be called repeatedly; simulated time accumulates.
func (s *Server) Simulate(fn func(t *Task) error) (time.Duration, error) {
	start := s.sys.Eng.Now()
	var err error
	s.sys.Eng.Spawn("task", func(p *sim.Proc) {
		err = fn(&Task{p: p, sys: s.sys})
	})
	end := s.sys.Eng.Run()
	return end.Sub(start), err
}

// Now returns the current simulated time.
func (s *Server) Now() time.Duration { return time.Duration(s.sys.Eng.Now()) }

// Task is the handle model code uses inside Simulate: all file system and
// data path operations charge simulated time to the calling process.
// Single-board convenience methods (Create, Open, Mkdir, ...) act on board
// 0; Board selects any board and exposes the full per-board surface.  In a
// Cluster, ClusterTask.Server returns one Task per fleet host.
type Task struct {
	p   *sim.Proc
	sys *server.System
}

// Board returns the handle for XBUS board i (0 unless WithBoards was used).
func (t *Task) Board(i int) *Board {
	return &Board{t: t, b: t.sys.Boards[i]}
}

// NumBoards returns the number of XBUS boards in the server.  (Renamed
// from Boards to keep the count distinct from the Board(i) handle.)
func (t *Task) NumBoards() int { return len(t.sys.Boards) }

// FormatFS creates the LFS on every board.
func (t *Task) FormatFS() error {
	for i := 0; i < t.NumBoards(); i++ {
		if err := t.Board(i).FormatFS(); err != nil {
			return err
		}
	}
	return nil
}

// Create makes a new file on board 0 and returns a handle.
func (t *Task) Create(path string) (*File, error) { return t.Board(0).Create(path) }

// Open opens an existing file on board 0.
func (t *Task) Open(path string) (*File, error) { return t.Board(0).Open(path) }

// Mkdir creates a directory on board 0's file system.
func (t *Task) Mkdir(path string) error { return t.Board(0).Mkdir(path) }

// Remove unlinks a file or empty directory on board 0.
func (t *Task) Remove(path string) error { return t.Board(0).Remove(path) }

// Rename moves a file or directory on board 0.
func (t *Task) Rename(oldPath, newPath string) error {
	return t.Board(0).Rename(oldPath, newPath)
}

// ReadDir lists a directory on board 0.
func (t *Task) ReadDir(path string) ([]lfs.DirEntry, error) {
	return t.Board(0).ReadDir(path)
}

// Stat describes a path on board 0.
func (t *Task) Stat(path string) (lfs.FileInfo, error) {
	return t.Board(0).Stat(path)
}

// Clean runs the segment cleaner on board 0 until target free segments.
func (t *Task) Clean(target int) (int, error) { return t.Board(0).Clean(target) }

// Sync makes all completed operations durable on every board.
func (t *Task) Sync() error {
	for i := 0; i < t.NumBoards(); i++ {
		if err := t.Board(i).Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint writes an LFS checkpoint on every board.
func (t *Task) Checkpoint() error {
	for i := 0; i < t.NumBoards(); i++ {
		if err := t.Board(i).Checkpoint(); err != nil {
			return err
		}
	}
	return nil
}

// Wait advances simulated time.
func (t *Task) Wait(d time.Duration) { t.p.Wait(d) }

// Elapsed returns simulated time since the start of the simulation.
func (t *Task) Elapsed() time.Duration { return time.Duration(t.p.Now()) }

// HardwareRead performs the raw high-bandwidth-path read of §2.3 on board 0.
func (t *Task) HardwareRead(offsetBytes int64, size int) error {
	return t.Board(0).HardwareRead(offsetBytes, size)
}

// HardwareWrite performs the raw high-bandwidth-path write of §2.3 on board 0.
func (t *Task) HardwareWrite(offsetBytes int64, size int) error {
	return t.Board(0).HardwareWrite(offsetBytes, size)
}

// ArrayCapacity returns the logical capacity in bytes of board 0's array.
func (t *Task) ArrayCapacity() int64 { return t.Board(0).ArrayCapacity() }

// Board is the per-board handle: the full file system surface, the raw
// hardware data paths, and fault injection/recovery for the board's array.
type Board struct {
	t *Task
	b *server.Board
}

// Index returns the board's position in the server.
func (bd *Board) Index() int { return bd.b.Index }

// FormatFS creates the LFS on this board.
func (bd *Board) FormatFS() error { return bd.b.FormatFS(bd.t.p) }

// MountFS mounts the existing LFS from the board's array, replaying the
// last checkpoint and log tail — the recovery path after Crash.
func (bd *Board) MountFS() error { return bd.b.MountFS(bd.t.p) }

// Create makes a new file on this board and returns a handle.
func (bd *Board) Create(path string) (*File, error) {
	f, err := bd.b.CreateFS(bd.t.p, path)
	if err != nil {
		return nil, err
	}
	return &File{t: bd.t, f: f}, nil
}

// Open opens an existing file on this board.
func (bd *Board) Open(path string) (*File, error) {
	f, err := bd.b.OpenFS(bd.t.p, path)
	if err != nil {
		return nil, err
	}
	return &File{t: bd.t, f: f}, nil
}

// Mkdir creates a directory.
func (bd *Board) Mkdir(path string) error { return bd.b.FS.Mkdir(bd.t.p, path) }

// Remove unlinks a file or empty directory.
func (bd *Board) Remove(path string) error { return bd.b.FS.Remove(bd.t.p, path) }

// Rename moves a file or directory.
func (bd *Board) Rename(oldPath, newPath string) error {
	return bd.b.FS.Rename(bd.t.p, oldPath, newPath)
}

// ReadDir lists a directory.
func (bd *Board) ReadDir(path string) ([]lfs.DirEntry, error) {
	return bd.b.FS.ReadDir(bd.t.p, path)
}

// Stat describes a path.
func (bd *Board) Stat(path string) (lfs.FileInfo, error) {
	return bd.b.FS.Stat(bd.t.p, path)
}

// Clean runs the segment cleaner until target free segments.
func (bd *Board) Clean(target int) (int, error) {
	return bd.b.FS.Clean(bd.t.p, target)
}

// Sync makes all completed operations on this board durable.
func (bd *Board) Sync() error {
	if bd.b.FS == nil {
		return nil
	}
	return bd.b.FS.Sync(bd.t.p)
}

// Checkpoint writes an LFS checkpoint on this board.
func (bd *Board) Checkpoint() error {
	if bd.b.FS == nil {
		return nil
	}
	return bd.b.FS.Checkpoint(bd.t.p)
}

// HardwareRead performs the Figure 5 hardware system-level read (array ->
// XBUS memory -> HIPPI loop) without any file system.  Against an array
// whose failures exceed its redundancy it returns ErrArrayFailed.
func (bd *Board) HardwareRead(offsetBytes int64, size int) error {
	return bd.b.HardwareRead(bd.t.p, offsetBytes/512, size)
}

// HardwareWrite performs the raw high-bandwidth-path write of §2.3.
func (bd *Board) HardwareWrite(offsetBytes int64, size int) error {
	return bd.b.HardwareWrite(bd.t.p, offsetBytes/512, size)
}

// ArrayCapacity returns the logical capacity in bytes of the board's array.
func (bd *Board) ArrayCapacity() int64 {
	return bd.b.Array.Sectors() * int64(bd.b.Array.SectorSize())
}

// NumDisks returns the number of disks on the board.
func (bd *Board) NumDisks() int { return bd.b.NumDisks() }

// FailDisk kills device i of the board's array immediately: subsequent
// commands to the drive return ErrDiskFailed, the controller gives up
// without retrying, and the array serves the column degraded.
func (bd *Board) FailDisk(i int) error {
	if err := bd.b.Array.FailDisk(i); err != nil {
		return err
	}
	bd.b.Disks[i].Drive.Fail()
	return nil
}

// LatentError marks sectors [lba, lba+n) of the board's device i
// unreadable until rewritten; reads covering them are retried by the
// controller and then escalate to a disk failure.
func (bd *Board) LatentError(i int, lba int64, n int) {
	bd.b.Disks[i].Drive.AddLatentError(lba, n)
}

// StallString hangs the SCSI string holding device i for the given
// duration; commands issued meanwhile hit the controller's command timeout.
func (bd *Board) StallString(i int, stall time.Duration) {
	bd.b.Disks[i].StallString(bd.t.p.Now().Add(stall))
}

// DiskFailed reports whether the array has marked device i failed.
func (bd *Board) DiskFailed(i int) bool { return bd.b.Array.Failed(i) }

// ArrayStats returns the board array's operation counters, including
// degraded reads, device errors, disk failures, and rebuilt stripes.
func (bd *Board) ArrayStats() raid.Stats { return bd.b.Array.Stats() }

// CacheStats counts block-cache activity on one board: hits, misses,
// evictions, write overlays, staged lines and invalidations, plus hit and
// fill byte volumes.
type CacheStats = cache.Stats

// CacheStats returns the board's block-cache counters.  Without WithCache
// it is all zeros.
func (bd *Board) CacheStats() CacheStats {
	if bd.b.Cache == nil {
		return CacheStats{}
	}
	return bd.b.Cache.Stats()
}

// NVRAMStats combines the battery-backed region's capacity accounting
// with the staging log's activity counters (staged records, group
// commits, degraded writes, crash replays).
type NVRAMStats = server.NVRAMStats

// NVRAMStats returns the board's NVRAM counters.  Without WithNVRAM it is
// all zeros.
func (bd *Board) NVRAMStats() NVRAMStats { return bd.b.NVRAMStats() }

// DrainNVRAM synchronously commits everything staged in the board's NVRAM
// region — the quiesce before a planned shutdown or a read-back verify.
func (bd *Board) DrainNVRAM() error { return bd.b.DrainNVRAM(bd.t.p) }

// ReplaceDisk attaches a spare drive in place of failed device i and starts
// a background hot rebuild that contends with foreground traffic; the
// returned handle reports completion.
func (bd *Board) ReplaceDisk(i int) (*HotRebuild, error) {
	rb, err := bd.b.ReplaceDisk(i)
	if err != nil {
		return nil, err
	}
	return &HotRebuild{t: bd.t, rb: rb}, nil
}

// Crash drops the board's volatile state — LFS segment buffers and every
// block-cache line — simulating a server crash; MountFS recovers from the
// log, and post-crash reads pay full disk cost until the cache rewarms.
func (bd *Board) Crash() { bd.b.Crash() }

// HotRebuild is a handle on a background hot rebuild started by ReplaceDisk.
type HotRebuild struct {
	t  *Task
	rb *raid.Rebuild
}

// Done reports whether the rebuild has finished.
func (r *HotRebuild) Done() bool { return r.rb.Done() }

// Wait blocks (in simulated time) until the rebuild completes and returns
// the number of stripes rebuilt.
func (r *HotRebuild) Wait() (int64, error) { return r.rb.Wait(r.t.p) }

// Scrub starts one background parity-scrub pass over the board's array: a
// low-priority patrol that yields to foreground requests, verifies each
// stripe's parity, and repairs latent sectors and stale parity in place —
// before a demand read or a rebuild trips over them.
func (bd *Board) Scrub() (*ScrubRun, error) {
	sc, err := bd.b.Array.StartScrub(raid.ScrubConfig{})
	if err != nil {
		return nil, err
	}
	return &ScrubRun{t: bd.t, sc: sc}, nil
}

// ScrubStats summarizes the board's patrol activity so far.
type ScrubStats struct {
	// Stripes the patrol verified.
	Stripes uint64
	// Repairs is how many columns (latent sectors or stale parity) the
	// patrol rewrote.
	Repairs uint64
}

// ScrubStats returns the board's accumulated scrub counters.
func (bd *Board) ScrubStats() ScrubStats {
	st := bd.b.Array.Stats()
	return ScrubStats{Stripes: st.ScrubbedStripes, Repairs: st.ScrubRepairs}
}

// ScrubRun is a handle on a background patrol pass started by Scrub.
type ScrubRun struct {
	t  *Task
	sc *raid.Scrub
}

// Done reports whether the patrol pass has finished.
func (r *ScrubRun) Done() bool { return r.sc.Done() }

// Wait blocks (in simulated time) until the pass completes and returns the
// stripes verified and repairs made.
func (r *ScrubRun) Wait() (stripes, repairs uint64) { return r.sc.Wait(r.t.p) }

// File is an open file on the server, accessed over the high-bandwidth
// path (reads stream from the array into HIPPI network buffers in XBUS
// memory, writes land in LFS segment buffers).
type File struct {
	t *Task
	f *server.FSFile
}

// Write stores data at off through the LFS write path and returns the
// simulated duration of the transfer.
func (f *File) Write(off int64, data []byte) (time.Duration, error) {
	start := f.t.p.Now()
	err := f.f.Board.FSWrite(f.t.p, f.f, off, data)
	return f.t.p.Now().Sub(start), err
}

// WriteDurable stores data at off and returns only once the bytes are
// durable: staged in the board's battery-backed NVRAM when WithNVRAM is
// configured (microseconds), else written through LFS and sealed to the
// array before acknowledging (milliseconds — the synchronous small-write
// penalty the NVRAM staging log exists to hide).
func (f *File) WriteDurable(off int64, data []byte) (time.Duration, error) {
	start := f.t.p.Now()
	err := f.f.Board.DurableWrite(f.t.p, f.f, off, data)
	return f.t.p.Now().Sub(start), err
}

// Read moves n bytes at off through the high-bandwidth read path,
// returning the bytes read (short only at end of file) and the simulated
// duration of the transfer.
func (f *File) Read(off int64, n int) ([]byte, time.Duration, error) {
	start := f.t.p.Now()
	data, err := f.f.Board.FSRead(f.t.p, f.f, off, n)
	return data, f.t.p.Now().Sub(start), err
}

// ReadEthernet moves n bytes over the low-bandwidth standard-mode path
// (XBUS -> host memory -> Ethernet) and returns the simulated duration.
func (f *File) ReadEthernet(off int64, n int) (time.Duration, error) {
	start := f.t.p.Now()
	err := f.f.Board.EtherRead(f.t.p, f.f, off, n)
	return f.t.p.Now().Sub(start), err
}

// Size returns the file's size.
func (f *File) Size() (int64, error) { return f.f.File.Size(f.t.p) }

// NewSPARCClient attaches a SPARCstation 10/51 client workstation to the
// server's Ultranet, as in the §3.4 network measurements.
func (s *Server) NewSPARCClient(name string) *Client {
	return &Client{srv: s, cfg: host.SPARCstation10(), name: name}
}

// Client is a HIPPI-attached client workstation (see package
// internal/client for the underlying model).
type Client struct {
	srv  *Server
	cfg  host.Config
	name string
}

// HostConfig returns the client's workstation model.
func (c *Client) HostConfig() host.Config { return c.cfg }

// Name returns the client's name.
func (c *Client) Name() string { return c.name }
