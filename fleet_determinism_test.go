package raidii

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"raidii/internal/telemetry"
	"raidii/internal/trace"
)

// runFleetFaultWorkload drives one seeded multi-server workload — striped
// writes and reads across a three-host cluster with a scripted whole-server
// outage in the middle — on a fully traced and metered fleet, and returns
// the Chrome trace JSON, the utilization table, and both telemetry exports.
// The workload itself asserts the fault semantics: reads reconstruct
// through cross-server parity while the host is down, a degraded write
// leaves stale fragments, and RebuildServer repairs them after the host
// returns.
func runFleetFaultWorkload(t *testing.T) (chrome, table, prom, telemJSON string) {
	t.Helper()
	const (
		victim = 1
		downAt = 1 * time.Second
		upAt   = 1500 * time.Millisecond
	)
	plan := FaultPlan{}.
		ServerDownAt(downAt, victim).
		ServerUpAt(upAt, victim)
	cl, err := NewCluster(Fig8Geometry(),
		WithServers(3),
		WithStripeFragmentKB(256),
		WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.Attach(cl.Fleet().Eng, trace.Config{Label: "fleet-det", Pid: 1, Events: true})
	reg := telemetry.Attach(cl.Fleet().Eng)

	data := make([]byte, 4<<20)
	for i := range data {
		data[i] = byte(i*131 + 7)
	}
	verify := func(what string, got []byte, off int64) {
		if !bytes.Equal(got, data[off:off+int64(len(got))]) {
			t.Errorf("%s at %d returned wrong bytes", what, off)
		}
	}

	_, err = cl.Simulate(func(task *ClusterTask) error {
		if err := task.FormatFS(); err != nil {
			return err
		}
		f, err := task.Create("det")
		if err != nil {
			return err
		}
		if _, err := f.Write(0, data); err != nil {
			return err
		}
		if err := task.Sync(); err != nil {
			return err
		}
		if task.Elapsed() >= downAt {
			t.Errorf("setup overran the scripted outage window: %v", task.Elapsed())
		}
		got, _, err := f.Read(0, 1<<20)
		if err != nil {
			return err
		}
		verify("pre-fault read", got, 0)

		// Advance to mid-outage: the host is dead, reads reconstruct the
		// victim's fragments from the survivors and parity, and a write
		// (same bytes, so verification stays valid) goes degraded.
		if d := downAt + (upAt-downAt)/2 - task.Elapsed(); d > 0 {
			task.Wait(d)
		}
		if !task.ServerDown(victim) {
			t.Error("scripted ServerDownAt did not fire")
		}
		got, _, err = f.Read(1<<20, 1<<20)
		if err != nil {
			return err
		}
		verify("degraded read", got, 1<<20)
		sb, err := task.StripeBytes()
		if err != nil {
			return err
		}
		if _, err := f.Write(0, data[:sb]); err != nil {
			return err
		}

		// Past the restore: the host answers again, but the fragment the
		// degraded write could not place stays stale until rebuilt.
		if d := upAt + 50*time.Millisecond - task.Elapsed(); d > 0 {
			task.Wait(d)
		}
		if task.ServerDown(victim) {
			t.Error("scripted ServerUpAt did not fire")
		}
		stale, err := task.StaleFragments(victim)
		if err != nil {
			return err
		}
		if stale == 0 {
			t.Error("degraded write left no stale fragments")
		}
		rebuilt, err := task.RebuildServer(victim)
		if err != nil {
			return err
		}
		if rebuilt != stale {
			t.Errorf("rebuilt %d fragments, want %d", rebuilt, stale)
		}
		got, _, err = f.Read(0, len(data))
		if err != nil {
			return err
		}
		verify("post-rebuild read", got, 0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var cb bytes.Buffer
	if err := trace.WriteChrome(&cb, rec); err != nil {
		t.Fatal(err)
	}
	opts := telemetry.ExportOptions{Label: "fleet-det"}
	var pb, jb bytes.Buffer
	if err := telemetry.WritePrometheus(&pb, reg, opts); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.WriteJSON(&jb, reg, opts); err != nil {
		t.Fatal(err)
	}
	return cb.String(), rec.Table(0), pb.String(), jb.String()
}

// TestFleetDeterministic runs the same scripted multi-server workload —
// including a whole-host kill and restore — twice and demands byte-identical
// traces and telemetry exports.  Fleet placement is pure arithmetic and all
// cross-server traffic is simulated events, so an identical plan must
// replay identically; this is the PR-level acceptance gate for the cluster
// layer.
func TestFleetDeterministic(t *testing.T) {
	chrome1, table1, prom1, json1 := runFleetFaultWorkload(t)
	chrome2, table2, prom2, json2 := runFleetFaultWorkload(t)
	if chrome1 != chrome2 {
		t.Error("Chrome trace JSON differs between identical fleet runs")
	}
	if table1 != table2 {
		t.Errorf("utilization tables differ between identical fleet runs:\nfirst:\n%s\nsecond:\n%s", table1, table2)
	}
	if prom1 != prom2 {
		t.Error("Prometheus export differs between identical fleet runs")
	}
	if json1 != json2 {
		t.Error("JSON export differs between identical fleet runs")
	}
	if !json.Valid([]byte(chrome1)) {
		t.Error("trace output is not valid JSON")
	}
	if !json.Valid([]byte(json1)) {
		t.Error("telemetry JSON export is not valid JSON")
	}
	// The scripted whole-server outage must be visible in the trace ...
	for _, want := range []string{`"server-down"`, `"server-up"`} {
		if !strings.Contains(chrome1, want) {
			t.Errorf("trace does not record the scripted %s event", want)
		}
	}
	// ... and every host must appear with its own resource labels.
	for _, srv := range []string{"s0-", "s1-", "s2-"} {
		if !strings.Contains(table1, srv) {
			t.Errorf("utilization table has no resources for host %q", srv)
		}
	}
}
