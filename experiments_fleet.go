package raidii

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"raidii/internal/fault"
	"raidii/internal/hippi"
	"raidii/internal/metrics"
	"raidii/internal/server"
	"raidii/internal/sim"
	"raidii/internal/telemetry"
	"raidii/internal/workload"
	"raidii/internal/zebra"
)

// This file holds the fleet experiments: aggregate striped bandwidth versus
// server count, and a scripted whole-host kill under read load with the
// cross-server parity absorbing the outage.

// FleetScaling measures a single client's striped bandwidth against fleets
// of increasing size, through the public Cluster API.  Each point assembles
// serverCounts[i] paper-configuration hosts on one Ultranet ring, writes a
// file across them and reads it back; read bandwidth scales near-linearly
// with hosts (§2.1.2's "interleaving ... across several" taken to whole
// servers, §5.2) until the ring is the bottleneck.
func FleetScaling(serverCounts []int) (*Figure, error) {
	fig := metrics.NewFigure("Fleet scaling: striped client bandwidth vs servers", "servers", "client MB/s")
	reads := fig.AddSeries("striped read")
	writes := fig.AddSeries("striped write")
	const total = 128 << 20
	for _, n := range serverCounts {
		cl, err := NewCluster(Fig8Geometry(), WithServers(n))
		if err != nil {
			return nil, err
		}
		attachProbe(fmt.Sprintf("fleet/%dservers", n), cl.Fleet().Eng)
		var wMBps, rMBps float64
		_, err = cl.Simulate(func(t *ClusterTask) error {
			if err := t.FormatFS(); err != nil {
				return err
			}
			f, err := t.Create("stream")
			if err != nil {
				return err
			}
			// The client's data counts as stored once the servers' segment
			// writes land; include that drain in the write measurement,
			// matching Figure 8's LFS write accounting.
			start := t.Elapsed()
			if _, err := f.Write(0, make([]byte, total)); err != nil {
				return err
			}
			if err := t.Sync(); err != nil {
				return err
			}
			wMBps = float64(total) / (t.Elapsed() - start).Seconds() / 1e6
			got, rDur, err := f.Read(0, total)
			if err != nil {
				return err
			}
			if len(got) != total {
				return fmt.Errorf("fleet read returned %d of %d bytes", len(got), total)
			}
			rMBps = float64(total) / rDur.Seconds() / 1e6
			return nil
		})
		if err != nil {
			return nil, err
		}
		reads.Add(float64(n), rMBps)
		writes.Add(float64(n), wMBps)
	}
	return fig, nil
}

// FleetKillTimelineResult pairs the per-interval striped read bandwidth
// timeline with the outage window and the repair work that followed.
type FleetKillTimelineResult struct {
	Fig    *Figure
	Server int           // which host the plan kills
	DownAt time.Duration // host goes down (absolute simulated time)
	UpAt   time.Duration // host comes back

	PreFaultMBps  float64 // mean bandwidth in whole buckets before DownAt
	DuringMBps    float64 // mean bandwidth while the host is down
	RecoveredMBps float64 // mean bandwidth in whole buckets after UpAt

	StaleFragments   int  // fragments the degraded write left stale on the dead host
	RebuiltFragments int  // fragments RebuildServer reconstructed from parity
	DataIntact       bool // full read-back matched after rebuild
}

// FleetKillTimeline runs a scripted whole-server kill — one of four hosts
// drops for a second mid-stream and comes back — under concurrent striped
// client reads, and reports delivered bandwidth in 250 ms intervals across
// the outage.  Every stripe touching the dead host is reconstructed from
// the surviving hosts' fragments and the rotating cross-server parity, so
// bandwidth dips rather than collapsing; a write issued during the outage
// goes degraded, and RebuildServer repairs the stale fragments once the
// host returns.  Identical plans yield byte-identical traces.
func FleetKillTimeline() (FleetKillTimelineResult, error) {
	const (
		victim   = 1
		downAt   = 4 * time.Second // fault times are absolute; fleet setup ends well before
		upAt     = 5 * time.Second
		runUntil = 8 * time.Second
		size     = 1 << 20
		fileMB   = 16
	)
	out := FleetKillTimelineResult{Server: victim, DownAt: downAt, UpAt: upAt}
	cfg := server.Fig8Config()
	cfg.Servers = 4
	cfg.Faults = fault.Plan{}.
		ServerDownAt(downAt, victim).
		ServerUpAt(upAt, victim)
	fl, err := server.NewFleet(cfg)
	if err != nil {
		return out, err
	}
	attachProbe("fleet-kill-timeline", fl.Eng)
	telemetry.Attach(fl.Eng)
	ep := clusterClientEndpoint(fl, cfg)

	data := make([]byte, fileMB<<20)
	for i := range data {
		data[i] = byte(i * 31)
	}

	// Setup and workload share one engine run: the scripted ServerDown
	// events sit in the same queue, so a separate setup Run would drain
	// them early.  Workers gate on setupDone instead.
	setupDone := sim.NewEvent(fl.Eng)
	var measStart time.Duration
	var z *zebra.Store
	fl.Eng.Spawn("setup", func(p *sim.Proc) {
		for _, sys := range fl.Servers {
			for _, b := range sys.Boards {
				if err := b.FormatFS(p); err != nil {
					panic(err)
				}
			}
		}
		// The store validates formatted boards, so it is built here rather
		// than before the run.
		var err error
		z, err = zebra.New(fl, ep, zebra.DefaultConfig())
		if err != nil {
			panic(err)
		}
		if err := z.Create(p, "stream"); err != nil {
			panic(err)
		}
		if err := z.Write(p, "stream", 0, data); err != nil {
			panic(err)
		}
		if err := z.SyncAll(p); err != nil {
			panic(err)
		}
		measStart = time.Duration(p.Now())
		setupDone.Signal()
	})

	// Per-interval accounting on absolute time: each completed read credits
	// its bytes to the 250 ms bucket it finished in.
	const bucket = 250 * time.Millisecond
	var bucketBytes [40]uint64
	var lastEnd time.Duration
	for w := 0; w < outstanding; w++ {
		rng := rand.New(rand.NewSource(int64(7919*w + 3)))
		fl.Eng.Spawn("fleet-worker", func(p *sim.Proc) {
			setupDone.Wait(p)
			for time.Duration(p.Now()) < runUntil {
				off := workload.RandomAligned(rng, int64(fileMB), 1) << 20
				got, err := z.Read(p, "stream", off, size)
				if err != nil {
					panic(err)
				}
				if !bytes.Equal(got, data[off:off+size]) {
					panic(fmt.Sprintf("fleet read at %d returned wrong bytes", off))
				}
				if i := int(time.Duration(p.Now()) / bucket); i < len(bucketBytes) {
					bucketBytes[i] += size
				}
				if time.Duration(p.Now()) > lastEnd {
					lastEnd = time.Duration(p.Now())
				}
			}
		})
	}

	// Mid-outage, a client writes one stripe.  The dead host's fragment
	// cannot be stored — the write completes degraded and records the
	// fragment stale for the post-outage rebuild.  It rewrites the same
	// bytes, so the readers' verification stays valid throughout.
	fl.Eng.Spawn("degraded-writer", func(p *sim.Proc) {
		setupDone.Wait(p)
		writeAt := downAt + (upAt-downAt)/2
		if now := time.Duration(p.Now()); now < writeAt {
			p.Wait(writeAt - now)
		}
		stripe := z.StripeBytes()
		if err := z.Write(p, "stream", 0, data[:stripe]); err != nil {
			panic(err)
		}
	})
	fl.Eng.Run()
	retired := lastEnd

	fig := metrics.NewFigure("Fleet kill timeline: whole-host outage under striped reads", "ms", "MB/s")
	series := fig.AddSeries("1 MB striped reads")
	var preBytes, duringBytes, postBytes uint64
	var preDur, duringDur, postDur time.Duration
	for i, n := range bucketBytes {
		start := time.Duration(i) * bucket
		end := start + bucket
		if start < measStart {
			continue // partial bucket: workload was not yet running
		}
		if retired < start {
			break
		}
		series.Add(float64(end.Milliseconds()), float64(n)/bucket.Seconds()/1e6)
		switch {
		case end <= downAt:
			preBytes += n
			preDur += bucket
		case start >= downAt && end <= upAt:
			duringBytes += n
			duringDur += bucket
		case start >= upAt && retired >= end:
			postBytes += n
			postDur += bucket
		}
	}
	out.Fig = fig
	if preDur > 0 {
		out.PreFaultMBps = float64(preBytes) / preDur.Seconds() / 1e6
	}
	if duringDur > 0 {
		out.DuringMBps = float64(duringBytes) / duringDur.Seconds() / 1e6
	}
	if postDur > 0 {
		out.RecoveredMBps = float64(postBytes) / postDur.Seconds() / 1e6
	}

	// The plan restored the host; repair the fragments the degraded write
	// left behind and prove the file is whole again.
	out.StaleFragments = z.StaleFragments(victim)
	fl.Eng.Spawn("repair", func(p *sim.Proc) {
		n, err := z.RebuildServer(p, victim)
		if err != nil {
			panic(err)
		}
		out.RebuiltFragments = n
		got, err := z.Read(p, "stream", 0, len(data))
		if err != nil {
			panic(err)
		}
		out.DataIntact = bytes.Equal(got, data)
	})
	fl.Eng.Run()
	return out, nil
}

// clusterClientEndpoint builds the Ultranet attachment the fleet
// experiments issue striped requests from — the same full-ring-speed client
// NewCluster registers.
func clusterClientEndpoint(fl *server.Fleet, cfg server.Config) *hippi.Endpoint {
	nic := sim.NewLink(fl.Eng, "fleet-client-nic", cfg.HIPPI.RingMBps, 0)
	ep := &hippi.Endpoint{Name: "fleet-client", Out: nic, In: nic, Setup: cfg.HIPPI.PacketSetup}
	fl.RegisterClientEndpoint(ep)
	return ep
}
