package raidii

import (
	"fmt"
	"math/rand"

	"raidii/internal/metrics"
	"raidii/internal/server"
	"raidii/internal/sim"
	"raidii/internal/telemetry"
	"raidii/internal/workload"
)

// CacheWorkingSetPoint is one working-set size of the sweep, measured on
// the cached and uncached machines.
type CacheWorkingSetPoint struct {
	WorkingSetMB int
	CachedMBps   float64
	UncachedMBps float64
	HitRate      float64 // of the cached run's measurement phase

	// Per-request read latency of each machine's measurement phase: the
	// cached p50 collapses to crossbar DRAM cost while the working set
	// fits, and converges on the uncached curve past capacity.
	CachedLat   LatencyStats
	UncachedLat LatencyStats
}

// CacheWorkingSetResult is the full sweep.
type CacheWorkingSetResult struct {
	CacheMB int
	Fig     *Figure
	Points  []CacheWorkingSetPoint
}

// CacheWorkingSet sweeps a random-read working set across the capacity of
// an XBUS-resident block cache of cacheMB megabytes.  For each working-set
// size the machine is warmed with one sequential pass over the region,
// then measured with closed-queue random 256 KB reads confined to it; an
// identical uncached machine runs the same workload as the reference.
//
// Expected shape (the Thomasian mirrored/hybrid-array observation that
// buffer-cache hit rate dominates delivered bandwidth long before spindle
// limits): while the working set fits in cache the reads are served from
// crossbar DRAM and throughput sits at the HIPPI/crossbar plateau, several
// times the disk-bound reference; past cache capacity the hit rate — and
// with it the bandwidth — falls to the reference curve.  The knee sits at
// the cache size.
func CacheWorkingSet(cacheMB int, workingSetsMB []int) (CacheWorkingSetResult, error) {
	out := CacheWorkingSetResult{CacheMB: cacheMB}
	out.Fig = metrics.NewFigure(
		fmt.Sprintf("Cache working set sweep (%d MB cache)", cacheMB),
		"working set MB", "MB/s")
	cached := out.Fig.AddSeries("cached")
	uncached := out.Fig.AddSeries("uncached")

	const reqSize = 256 << 10
	for _, ws := range workingSetsMB {
		pt := CacheWorkingSetPoint{WorkingSetMB: ws}
		for _, withCache := range []bool{true, false} {
			cfg := server.DefaultConfig()
			label := "uncached"
			if withCache {
				cfg.CacheBytes = cacheMB << 20
				label = "cached"
			}
			sys, err := server.New(cfg)
			if err != nil {
				return out, err
			}
			attachProbe(fmt.Sprintf("cachews/%dMB/%s", ws, label), sys.Eng)
			telemetry.Attach(sys.Eng)
			b := sys.Boards[0]
			wsBytes := ws << 20

			// Warm: one sequential pass over the working set, in 1 MB
			// requests so buffer acquisition stays well inside the DRAM
			// pool.  On the cached machine this leaves the region's tail
			// (up to cache capacity) resident, as a prior streaming
			// transfer through the board would.
			var opErr error
			sys.Eng.Spawn("warm", func(p *sim.Proc) {
				// One "warm" request spans the pass, so its HardwareReads
				// join it instead of skewing the hw-read measurement kind.
				req := telemetry.Begin(p, "warm")
				defer req.End(p, nil)
				const warmReq = 1 << 20
				for off := 0; off < wsBytes; off += warmReq {
					n := warmReq
					if n > wsBytes-off {
						n = wsBytes - off
					}
					if err := b.HardwareRead(p, int64(off)/512, n); err != nil && opErr == nil {
						opErr = err
					}
				}
			})
			sys.Eng.Run()
			if opErr != nil {
				return out, opErr
			}

			statsBefore := CacheStats{}
			if b.Cache != nil {
				statsBefore = b.Cache.Stats()
			}
			start := sys.Eng.Now()
			res := workload.FixedOps(sys.Eng, outstanding, (32<<20)/reqSize, func(p *sim.Proc, _ int, rng *rand.Rand) int {
				align := int64(reqSize / 512)
				off := workload.RandomAligned(rng, int64(wsBytes)/512-align, align)
				if err := b.HardwareRead(p, off, reqSize); err != nil && opErr == nil {
					opErr = err
				}
				return reqSize
			})
			res.Elapsed = sim.Duration(sys.Eng.Now() - start)
			if opErr != nil {
				return out, opErr
			}
			if withCache {
				pt.CachedMBps = res.MBps()
				pt.CachedLat = latencyStats(sys.Eng, "hw-read")
				st := b.Cache.Stats()
				hits := st.Hits - statsBefore.Hits
				misses := st.Misses - statsBefore.Misses
				if hits+misses > 0 {
					pt.HitRate = float64(hits) / float64(hits+misses)
				}
			} else {
				pt.UncachedMBps = res.MBps()
				pt.UncachedLat = latencyStats(sys.Eng, "hw-read")
			}
		}
		cached.Add(float64(ws), pt.CachedMBps)
		uncached.Add(float64(ws), pt.UncachedMBps)
		out.Points = append(out.Points, pt)
	}
	return out, nil
}
